#!/usr/bin/env bash
# End-to-end smoke test of the erapid-serve HTTP API:
#
#   1. build and start the daemon (with an admin listener)
#   2. POST a small P-B run and stream its live telemetry to completion
#   3. re-POST the identical config and verify the content-addressed
#      cache answers instantly with the same result digest
#   4. scrape /metrics around the cached re-submit: the cache-hit
#      counter must increment and the exposition must parse (valid
#      names, no duplicate families, cumulative histogram buckets)
#   5. verify the admin listener repeats /metrics and serves pprof
#   6. verify structured 400s for invalid configs
#   7. SIGTERM and verify the server drains and exits
#
# Usage: scripts/service_smoke.sh [addr] [admin-addr]
#        (defaults 127.0.0.1:18080 and 127.0.0.1:18081)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:18080}"
ADMIN_ADDR="${2:-127.0.0.1:18081}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/erapid-serve" ./cmd/erapid-serve
"$WORKDIR/erapid-serve" -addr "$ADDR" -admin-addr "$ADMIN_ADDR" -drain 60s -log=false &
SERVE_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/v1/healthz" | python3 -c \
  'import sys, json; h = json.load(sys.stdin); assert h["status"] == "ok", h; print("healthz:", h)'

CFG='{"Mode":"P-B","Pattern":"complement","Load":0.7,"Boards":4,"NodesPerBoard":4,
      "Window":500,"WarmupCycles":3000,"MeasureCycles":3000,"DrainLimitCycles":60000}'

ID=$(curl -fsS -d "$CFG" "http://$ADDR/v1/runs" | python3 -c \
  'import sys, json; j = json.load(sys.stdin); assert j["state"] in ("queued", "running"), j; print(j["id"])')
echo "submitted run $ID"

# The event stream blocks until the run finishes; every line must parse
# in the stable JSONL schema and the measurement phases must appear.
curl -fsSN "http://$ADDR/v1/jobs/$ID/events" | python3 -c '
import sys, json
n = phases = 0
for line in sys.stdin:
    ev = json.loads(line)
    assert "cycle" in ev and "kind" in ev, ev
    n += 1
    phases += ev["kind"] == "phase"
assert n > 0 and phases >= 3, (n, phases)
print(f"streamed {n} events ({phases} phase changes)")
'

DIGEST=$(curl -fsS "http://$ADDR/v1/jobs/$ID" | python3 -c \
  'import sys, json; j = json.load(sys.stdin); assert j["state"] == "done", j; assert j["result"], j; print(j["result_digest"])')
echo "run done, result digest $DIGEST"

curl -fsS "http://$ADDR/metrics" > "$WORKDIR/metrics-before.txt"

# Identical config → content-addressed cache hit: instantly terminal,
# marked cached, byte-identical result (same digest), HTTP 200.
curl -fsS -o "$WORKDIR/second.json" -w '%{http_code}' -d "$CFG" "http://$ADDR/v1/runs" | grep -qx 200
DIGEST="$DIGEST" SECOND="$WORKDIR/second.json" python3 -c '
import json, os
j = json.load(open(os.environ["SECOND"]))
assert j.get("cached") is True, j
assert j["state"] == "done", j
assert j["result_digest"] == os.environ["DIGEST"], (j["result_digest"], os.environ["DIGEST"])
print("cache hit verified:", j["id"])
'

# /metrics around the cached re-submit: the hit counter increments by
# exactly one, and both scrapes are well-formed Prometheus exposition.
curl -fsS "http://$ADDR/metrics" > "$WORKDIR/metrics-after.txt"
BEFORE="$WORKDIR/metrics-before.txt" AFTER="$WORKDIR/metrics-after.txt" python3 -c '
import os, re

NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

def parse(path):
    values, families, last_bucket = {}, {}, {}
    for line in open(path):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, fam, typ = line.split(" ", 3)
            assert fam not in families, f"duplicate TYPE for {fam}"
            assert NAME.match(fam), f"bad family name {fam!r}"
            families[fam] = typ
            continue
        if line.startswith("#"):
            continue
        name, _, val = line.rpartition(" ")
        assert name, f"unnamed sample {line!r}"
        base = name.split("{", 1)[0]
        assert NAME.match(base), f"bad sample name {name!r}"
        v = float(val)
        values[name] = v
        if "_bucket{" in name:
            series = re.sub(r",?le=\"[^\"]*\"", "", name)
            assert v >= last_bucket.get(series, 0.0), f"non-cumulative bucket {name}"
            last_bucket[series] = v
    assert families, f"{path}: no metric families"
    return values, families

before, fam_b = parse(os.environ["BEFORE"])
after, fam_a = parse(os.environ["AFTER"])
for required in ("erapid_jobs_submitted_total", "erapid_cache_hits_total",
                 "erapid_job_run_seconds", "erapid_job_queue_wait_seconds",
                 "erapid_queue_depth", "go_goroutines"):
    assert required in fam_a, f"missing family {required}"
hits_before = before["erapid_cache_hits_total"]
hits_after = after["erapid_cache_hits_total"]
assert hits_after == hits_before + 1, (hits_before, hits_after)
assert after["erapid_jobs_submitted_total{kind=\"run\"}"] == 2, after
count = after["erapid_job_run_seconds_count{kind=\"run\"}"]
assert count == 1, f"run histogram count {count} (cache hit must not observe)"
print(f"metrics verified: cache hits {hits_before:g} -> {hits_after:g}, "
      f"{len(fam_a)} families parse clean")
'

# A config differing ONLY in the reconfiguration policy must be a new
# simulation with a distinct result digest — never a cache hit on the
# baseline entry (the policy participates in the content digest).
POLICY_CFG="${CFG%\}},\"Policy\":{\"name\":\"greedy-off\"}}"
POLICY_ID=$(curl -fsS -d "$POLICY_CFG" "http://$ADDR/v1/runs" | python3 -c '
import sys, json
j = json.load(sys.stdin)
assert not j.get("cached"), f"policy change served from cache: {j}"
print(j["id"])
')
curl -fsSN "http://$ADDR/v1/jobs/$POLICY_ID/events" >/dev/null
curl -fsS "http://$ADDR/v1/jobs/$POLICY_ID" | DIGEST="$DIGEST" python3 -c '
import sys, json, os
j = json.load(sys.stdin)
assert j["state"] == "done", j
d = j["result_digest"]
assert d != os.environ["DIGEST"], f"policy run repeated the baseline digest {d}"
print("policy digest distinction verified:", d)
'

# The admin listener repeats /metrics and serves the pprof index.
curl -fsS "http://$ADMIN_ADDR/metrics" | grep -q '^# TYPE erapid_jobs_submitted_total counter$'
curl -fsS "http://$ADMIN_ADDR/debug/pprof/" | grep -qi profile
echo "admin listener verified (metrics + pprof)"

# Invalid config → structured 400 naming the offending fields.
CODE=$(curl -s -o "$WORKDIR/err.json" -w '%{http_code}' -d '{"Load":-1,"Window":0}' "http://$ADDR/v1/runs")
test "$CODE" = 400
ERR="$WORKDIR/err.json" python3 -c '
import json, os
e = json.load(open(os.environ["ERR"]))
fields = {f["field"] for f in e["fields"]}
assert {"Load", "Window"} <= fields, e
print("validation errors verified:", sorted(fields))
'

# SIGTERM → graceful drain and exit.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 200); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "erapid-serve did not exit after SIGTERM" >&2
  exit 1
fi
wait "$SERVE_PID" || true
echo "service smoke OK"

#!/usr/bin/env bash
# End-to-end smoke test of the erapid-serve HTTP API:
#
#   1. build and start the daemon
#   2. POST a small P-B run and stream its live telemetry to completion
#   3. re-POST the identical config and verify the content-addressed
#      cache answers instantly with the same result digest
#   4. verify structured 400s for invalid configs
#   5. SIGTERM and verify the server drains and exits
#
# Usage: scripts/service_smoke.sh [addr]   (default 127.0.0.1:18080)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:18080}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/erapid-serve" ./cmd/erapid-serve
"$WORKDIR/erapid-serve" -addr "$ADDR" -drain 60s &
SERVE_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/v1/healthz" | python3 -c \
  'import sys, json; h = json.load(sys.stdin); assert h["status"] == "ok", h; print("healthz:", h)'

CFG='{"Mode":"P-B","Pattern":"complement","Load":0.7,"Boards":4,"NodesPerBoard":4,
      "Window":500,"WarmupCycles":3000,"MeasureCycles":3000,"DrainLimitCycles":60000}'

ID=$(curl -fsS -d "$CFG" "http://$ADDR/v1/runs" | python3 -c \
  'import sys, json; j = json.load(sys.stdin); assert j["state"] in ("queued", "running"), j; print(j["id"])')
echo "submitted run $ID"

# The event stream blocks until the run finishes; every line must parse
# in the stable JSONL schema and the measurement phases must appear.
curl -fsSN "http://$ADDR/v1/jobs/$ID/events" | python3 -c '
import sys, json
n = phases = 0
for line in sys.stdin:
    ev = json.loads(line)
    assert "cycle" in ev and "kind" in ev, ev
    n += 1
    phases += ev["kind"] == "phase"
assert n > 0 and phases >= 3, (n, phases)
print(f"streamed {n} events ({phases} phase changes)")
'

DIGEST=$(curl -fsS "http://$ADDR/v1/jobs/$ID" | python3 -c \
  'import sys, json; j = json.load(sys.stdin); assert j["state"] == "done", j; assert j["result"], j; print(j["result_digest"])')
echo "run done, result digest $DIGEST"

# Identical config → content-addressed cache hit: instantly terminal,
# marked cached, byte-identical result (same digest), HTTP 200.
curl -fsS -o "$WORKDIR/second.json" -w '%{http_code}' -d "$CFG" "http://$ADDR/v1/runs" | grep -qx 200
DIGEST="$DIGEST" SECOND="$WORKDIR/second.json" python3 -c '
import json, os
j = json.load(open(os.environ["SECOND"]))
assert j.get("cached") is True, j
assert j["state"] == "done", j
assert j["result_digest"] == os.environ["DIGEST"], (j["result_digest"], os.environ["DIGEST"])
print("cache hit verified:", j["id"])
'

# Invalid config → structured 400 naming the offending fields.
CODE=$(curl -s -o "$WORKDIR/err.json" -w '%{http_code}' -d '{"Load":-1,"Window":0}' "http://$ADDR/v1/runs")
test "$CODE" = 400
ERR="$WORKDIR/err.json" python3 -c '
import json, os
e = json.load(open(os.environ["ERR"]))
fields = {f["field"] for f in e["fields"]}
assert {"Load", "Window"} <= fields, e
print("validation errors verified:", sorted(fields))
'

# SIGTERM → graceful drain and exit.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 200); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "erapid-serve did not exit after SIGTERM" >&2
  exit 1
fi
wait "$SERVE_PID" || true
echo "service smoke OK"

#!/usr/bin/env bash
# bench.sh — run the simulator speed benchmarks and record the results
# as a machine-readable JSON file (default BENCH_1.json in the repo
# root).
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=10s scripts/bench.sh        # longer, steadier runs
#
# The file records cycles/s, ns/op, B/op and allocs/op for each
# BenchmarkSimSpeed* case, plus the pre-optimization baseline of the
# headline case (64-node P-B, uniform, load 0.5) and the resulting
# speedup factors. See the Performance sections of README.md and
# DESIGN.md for what the numbers mean.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3s}"
OUT="${1:-BENCH_1.json}"

RAW="$(go test -run '^$' -bench 'BenchmarkSimSpeed' -benchtime "$BENCHTIME" .)"
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v benchtime="$BENCHTIME" '
/^BenchmarkSimSpeed/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)      # strip the -GOMAXPROCS suffix
    ns = "null"; cyc = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns = $i
        else if ($(i+1) == "cycles/s")  cyc = $i
        else if ($(i+1) == "B/op")      bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
    }
    n++
    names[n] = name; nss[n] = ns; cycs[n] = cyc
    bytess[n] = bytes; allocss[n] = allocs
}
END {
    if (n == 0) { print "bench.sh: no BenchmarkSimSpeed results parsed" > "/dev/stderr"; exit 1 }
    # Pre-PR baseline of the headline case, measured at the seed commit
    # on the same class of machine (see README.md "Performance").
    base_ns = 27829; base_cycles = 35933; base_bytes = 3840; base_allocs = 30
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"baseline\": {\n"
    printf "    \"name\": \"SimSpeed/P-B (pre-optimization seed)\",\n"
    printf "    \"ns_per_op\": %g, \"cycles_per_sec\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g\n", base_ns, base_cycles, base_bytes, base_allocs
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"cycles_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], nss[i], cycs[i], bytess[i], allocss[i], (i < n ? "," : "")
        if (names[i] == "SimSpeed/P-B") { head_cyc = cycs[i]; head_allocs = allocss[i] }
    }
    printf "  ]"
    if (head_cyc != "") {
        printf ",\n  \"headline\": {\n"
        printf "    \"name\": \"SimSpeed/P-B\",\n"
        printf "    \"speedup_cycles_per_sec\": %.2f,\n", head_cyc / base_cycles
        if (head_allocs + 0 == 0)
            printf "    \"alloc_reduction\": \"%gx -> 0 (allocation-free steady state)\"\n", base_allocs
        else
            printf "    \"alloc_reduction\": %.2f\n", base_allocs / head_allocs
        printf "  }"
    }
    printf "\n}\n"
}' > "$OUT"

echo "wrote $OUT" >&2

#!/usr/bin/env bash
# bench.sh — run the simulator speed benchmarks, record the results as a
# machine-readable JSON file (default BENCH_2.json in the repo root),
# and gate them against a checked-in baseline.
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=10s scripts/bench.sh        # longer, steadier runs
#   BASELINE=none scripts/bench.sh        # record only, no regression gate
#   SKIP_LARGE=1 scripts/bench.sh         # skip the 32x16/64x8 configs
#
# The file records cycles/s, ns/op, B/op and allocs/op for each
# BenchmarkSimSpeed* case (including the large-config parallel matrix),
# plus the pre-optimization baseline of the headline case (64-node P-B,
# uniform, load 0.5) and the resulting speedup factors. See the
# Performance sections of README.md and DESIGN.md for what the numbers
# mean.
#
# Gates (after recording):
#   - against $BASELINE (default BENCH_1.json): any benchmark present in
#     both files may not lose more than 10% cycles/s;
#   - on machines with >= 8 CPUs: SimSpeedLarge/32x16-w8 must be at
#     least 2x SimSpeedLarge/32x16-w1 (the intra-run parallelism
#     criterion; meaningless and skipped on smaller machines).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3s}"
OUT="${1:-BENCH_2.json}"
BASELINE="${BASELINE:-BENCH_1.json}"

BENCH_RE='BenchmarkSimSpeed'
if [ "${SKIP_LARGE:-0}" = "1" ]; then
    BENCH_RE='BenchmarkSimSpeed($|HighLoad|Complement|Idle)'
fi

RAW="$(go test -run '^$' -bench "$BENCH_RE" -benchtime "$BENCHTIME" .)"
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v benchtime="$BENCHTIME" \
    -v cpus="$(nproc)" '
/^BenchmarkSimSpeed/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)      # strip the -GOMAXPROCS suffix
    ns = "null"; cyc = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns = $i
        else if ($(i+1) == "cycles/s")  cyc = $i
        else if ($(i+1) == "B/op")      bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
    }
    n++
    names[n] = name; nss[n] = ns; cycs[n] = cyc
    bytess[n] = bytes; allocss[n] = allocs
}
END {
    if (n == 0) { print "bench.sh: no BenchmarkSimSpeed results parsed" > "/dev/stderr"; exit 1 }
    # Pre-PR baseline of the headline case, measured at the seed commit
    # on the same class of machine (see README.md "Performance").
    base_ns = 27829; base_cycles = 35933; base_bytes = 3840; base_allocs = 30
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"baseline\": {\n"
    printf "    \"name\": \"SimSpeed/P-B (pre-optimization seed)\",\n"
    printf "    \"ns_per_op\": %g, \"cycles_per_sec\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g\n", base_ns, base_cycles, base_bytes, base_allocs
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"cycles_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], nss[i], cycs[i], bytess[i], allocss[i], (i < n ? "," : "")
        if (names[i] == "SimSpeed/P-B") { head_cyc = cycs[i]; head_allocs = allocss[i] }
    }
    printf "  ]"
    if (head_cyc != "") {
        printf ",\n  \"headline\": {\n"
        printf "    \"name\": \"SimSpeed/P-B\",\n"
        printf "    \"speedup_cycles_per_sec\": %.2f,\n", head_cyc / base_cycles
        if (head_allocs + 0 == 0)
            printf "    \"alloc_reduction\": \"%gx -> 0 (allocation-free steady state)\"\n", base_allocs
        else
            printf "    \"alloc_reduction\": %.2f\n", base_allocs / head_allocs
        printf "  }"
    }
    printf "\n}\n"
}' > "$OUT"

echo "wrote $OUT" >&2

if [ "$BASELINE" = "none" ]; then
    echo "bench.sh: BASELINE=none, skipping regression gate" >&2
    exit 0
fi
if [ ! -f "$BASELINE" ]; then
    echo "bench.sh: baseline $BASELINE not found, skipping regression gate" >&2
    exit 0
fi

python3 - "$OUT" "$BASELINE" <<'EOF'
import json, os, sys

out_path, base_path = sys.argv[1], sys.argv[2]
cur = json.load(open(out_path))
base = json.load(open(base_path))

def by_name(doc):
    return {b["name"]: b for b in doc.get("benchmarks", [])
            if b.get("cycles_per_sec") is not None}

cur_b, base_b = by_name(cur), by_name(base)

# The idle floor is sub-microsecond per cycle: scheduler jitter alone
# moves it +/-20% run to run, so it is reported but not gated.
UNGATED = {"SimSpeedIdle"}

failures = []
for name, old in sorted(base_b.items()):
    new = cur_b.get(name)
    if new is None:
        continue
    ratio = new["cycles_per_sec"] / old["cycles_per_sec"]
    if name in UNGATED:
        print(f"  info {name}: {old['cycles_per_sec']:.0f} -> "
              f"{new['cycles_per_sec']:.0f} cycles/s ({ratio:.2f}x, ungated)")
        continue
    mark = "FAIL" if ratio < 0.90 else "ok"
    print(f"  {mark:4s} {name}: {old['cycles_per_sec']:.0f} -> "
          f"{new['cycles_per_sec']:.0f} cycles/s ({ratio:.2f}x)")
    if ratio < 0.90:
        failures.append(name)
if failures:
    print(f"bench.sh: {len(failures)} benchmark(s) regressed >10% vs "
          f"{base_path}: {', '.join(failures)}", file=sys.stderr)
    sys.exit(1)

# Intra-run parallelism criterion: only meaningful with real cores to
# spread the boards over.
cpus = os.cpu_count() or 1
w1 = cur_b.get("SimSpeedLarge/32x16-w1")
w8 = cur_b.get("SimSpeedLarge/32x16-w8")
if cpus >= 8 and w1 and w8:
    speedup = w8["cycles_per_sec"] / w1["cycles_per_sec"]
    print(f"  32x16 parallel speedup (w8/w1): {speedup:.2f}x")
    if speedup < 2.0:
        print(f"bench.sh: 32x16 -workers 8 speedup {speedup:.2f}x < 2x",
              file=sys.stderr)
        sys.exit(1)
elif w1 and w8:
    print(f"  32x16 parallel speedup check skipped ({cpus} CPU(s) < 8)")
print("bench.sh: regression gate passed")
EOF

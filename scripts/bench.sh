#!/usr/bin/env bash
# bench.sh — run the simulator speed benchmarks, record the results as a
# machine-readable JSON file (default BENCH_6.json in the repo root),
# and gate them against a checked-in baseline.
#
# Usage:
#   scripts/bench.sh [-profile-dir DIR] [output.json]
#   BENCHTIME=10s scripts/bench.sh        # longer, steadier runs
#   BENCH_COUNT=1 scripts/bench.sh        # single pass (default 3)
#   BASELINE=none scripts/bench.sh        # record only, no regression gate
#   SKIP_LARGE=1 scripts/bench.sh         # skip the 32x16/64x8 configs
#   PROFILE_DIR=prof scripts/bench.sh     # same as -profile-dir prof
#
# The file records cycles/s (or jobs/s), ns/op, B/op and allocs/op for
# each BenchmarkSimSpeed* case (including the large-config parallel
# matrix and the 1024-node hierarchical row SimSpeedHier/16x8x8, whose
# "peak_rss_mb" field is the process high-water memory mark after the
# run), the System.Reset reuse benchmarks (SystemReset, SweepJobs,
# ServiceThroughput), plus the pre-optimization baseline of the headline
# case (64-node P-B, uniform, load 0.5) and the resulting speedup
# factors. See the Performance sections of README.md and DESIGN.md for
# what the numbers mean.
#
# Each benchmark runs BENCH_COUNT times. The recorded headline figure is
# the per-metric best (min ns/op + max cycles/s, min B/op, min
# allocs/op): on shared machines co-tenant interference only ever adds
# time and garbage, so the best of N is the least-noisy estimate of the
# true cost, and the regression gate stays meaningful run to run. The
# individual per-run ns/op samples are also recorded
# ("samples_ns_per_op"), together with their spread as "variance_pct"
# (100 * (max - min) / min over the samples), so a reader of the JSON
# can judge how noisy the box was without access to the raw output.
#
# -profile-dir DIR additionally captures CPU and heap profiles of the
# large-config benchmark at 1 and 8 workers (cpu-32x16-w{1,8}.pprof,
# mem-32x16-w{1,8}.pprof, plus the bench.test binary for symbolizing).
# Inspect with:  go tool pprof DIR/bench.test DIR/cpu-32x16-w8.pprof
#
# Gates (after recording; every gate's outcome — ok, FAIL, or skipped
# with the reason — is appended to the JSON under "gates", so the perf
# trajectory is self-describing off-box):
#   - against $BASELINE (default BENCH_5.json): any benchmark present in
#     both files may not lose more than 20% cycles/s. Cross-run absolute
#     throughput on shared machines drifts ±15% with co-tenant load
#     (measured: the same binary spans 84–99k cycles/s on the P-B
#     headline across a day), so this margin only catches engine-scale
#     regressions; the same-run relative gates below are the precise
#     ones, being immune to box drift;
#   - on machines with >= 8 CPUs: SimSpeedLarge/32x16-w8 must be at
#     least 2x SimSpeedLarge/32x16-w1, and w2 may not be slower than w1
#     on any large config (the intra-run parallelism criteria). On
#     smaller machines both checks are recorded as skipped with the
#     NumCPU reason;
#   - on every machine: the parallel engine may not allocate more per
#     cycle than the serial path — 32x16 allocs/op at w2..w8 must be
#     <= w1 from the same run;
#   - on every machine running the large configs: SweepJobs/reuse must
#     be at least 1.5x SweepJobs/fresh jobs/s — the System.Reset reuse
#     payoff on repeated same-topology jobs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3s}"
BENCH_COUNT="${BENCH_COUNT:-3}"
PROFILE_DIR="${PROFILE_DIR:-}"

ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        -profile-dir|--profile-dir)
            PROFILE_DIR="$2"; shift 2 ;;
        *)
            ARGS+=("$1"); shift ;;
    esac
done
OUT="${ARGS[0]:-BENCH_6.json}"
BASELINE="${BASELINE:-BENCH_5.json}"

# The hierarchical 1k-node row runs in its own process below so its
# peakRSS-MB metric (getrusage ru_maxrss, a process-wide high-water
# mark) measures that row alone rather than whatever large config ran
# before it in the same binary.
BENCH_RE='BenchmarkSimSpeed($|Large|HighLoad|Complement|Idle)|BenchmarkSystemReset|BenchmarkSweepJobs|BenchmarkServiceThroughput'
HIER_RE='BenchmarkSimSpeedHier'
if [ "${SKIP_LARGE:-0}" = "1" ]; then
    # The reuse benchmarks all run large configs (64x8 jobs, 32x16
    # resets), so SKIP_LARGE drops them along with SimSpeedLarge and
    # the 1024-node hierarchical row.
    BENCH_RE='BenchmarkSimSpeed($|HighLoad|Complement|Idle)'
    HIER_RE=''
fi

# Capture stderr too, and surface the output even when go test fails —
# otherwise set -e discards the evidence with the command substitution.
# -timeout 0: the full matrix at BENCH_COUNT repeats legitimately
# outruns go test's default 10-minute kill on slow or shared boxes.
if ! RAW="$(go test -run '^$' -bench "$BENCH_RE" -benchtime "$BENCHTIME" -count "$BENCH_COUNT" -timeout 0 . 2>&1)"; then
    printf '%s\n' "$RAW" >&2
    echo "bench.sh: benchmark run failed" >&2
    exit 1
fi
if [ -n "$HIER_RE" ]; then
    if ! HRAW="$(go test -run '^$' -bench "$HIER_RE" -benchtime "$BENCHTIME" -count "$BENCH_COUNT" -timeout 0 . 2>&1)"; then
        printf '%s\n' "$HRAW" >&2
        echo "bench.sh: hierarchical benchmark run failed" >&2
        exit 1
    fi
    RAW="$RAW
$HRAW"
fi
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v benchtime="$BENCHTIME" \
    -v bench_count="$BENCH_COUNT" \
    -v cpus="$(nproc)" '
/^Benchmark(SimSpeed|SystemReset|SweepJobs|ServiceThroughput)/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)      # strip the -GOMAXPROCS suffix
    ns = "null"; cyc = "null"; jobs = "null"; bytes = "null"; allocs = "null"; rss = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")           ns = $i
        else if ($(i+1) == "cycles/s")   cyc = $i
        else if ($(i+1) == "jobs/s")     jobs = $i
        else if ($(i+1) == "B/op")       bytes = $i
        else if ($(i+1) == "allocs/op")  allocs = $i
        else if ($(i+1) == "peakRSS-MB") rss = $i
    }
    if (!(name in seen)) {
        n++; names[n] = name; seen[name] = n
        nss[n] = ns; cycs[n] = cyc; jobss[n] = jobs
        bytess[n] = bytes; allocss[n] = allocs; rsss[n] = rss
        if (ns != "null") { samples[n] = ns; minns[n] = ns + 0; maxns[n] = ns + 0 }
        next
    }
    # Repeat runs (-count): keep the per-metric best — interference only
    # ever inflates a figure, so the minimum (maximum for rates) is the
    # cleanest estimate of the true cost — but record every ns/op sample
    # so the JSON carries the run-to-run spread too.
    k = seen[name]
    if (ns != "null") {
        samples[k] = (samples[k] == "" ? ns : samples[k] ", " ns)
        if (ns + 0 < minns[k]) minns[k] = ns + 0
        if (ns + 0 > maxns[k]) maxns[k] = ns + 0
    }
    if (ns != "null"     && (nss[k] == "null"     || ns + 0 < nss[k] + 0))        nss[k] = ns
    if (cyc != "null"    && (cycs[k] == "null"    || cyc + 0 > cycs[k] + 0))      cycs[k] = cyc
    if (jobs != "null"   && (jobss[k] == "null"   || jobs + 0 > jobss[k] + 0))    jobss[k] = jobs
    if (bytes != "null"  && (bytess[k] == "null"  || bytes + 0 < bytess[k] + 0))  bytess[k] = bytes
    if (allocs != "null" && (allocss[k] == "null" || allocs + 0 < allocss[k] + 0)) allocss[k] = allocs
    # Peak RSS is a high-water mark: the max across repeats is the figure.
    if (rss != "null"    && (rsss[k] == "null"    || rss + 0 > rsss[k] + 0))      rsss[k] = rss
}
END {
    if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    # Pre-PR baseline of the headline case, measured at the seed commit
    # on the same class of machine (see README.md "Performance").
    base_ns = 27829; base_cycles = 35933; base_bytes = 3840; base_allocs = 30
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"bench_count\": %d,\n", bench_count
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"baseline\": {\n"
    printf "    \"name\": \"SimSpeed/P-B (pre-optimization seed)\",\n"
    printf "    \"ns_per_op\": %g, \"cycles_per_sec\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g\n", base_ns, base_cycles, base_bytes, base_allocs
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        var = "0"
        if (samples[i] != "" && minns[i] > 0)
            var = sprintf("%.1f", 100 * (maxns[i] - minns[i]) / minns[i])
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"cycles_per_sec\": %s, \"jobs_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"peak_rss_mb\": %s,\n", \
            names[i], nss[i], cycs[i], jobss[i], bytess[i], allocss[i], rsss[i]
        printf "     \"samples_ns_per_op\": [%s], \"variance_pct\": %s}%s\n", \
            samples[i], var, (i < n ? "," : "")
        if (names[i] == "SimSpeed/P-B") { head_cyc = cycs[i]; head_allocs = allocss[i] }
    }
    printf "  ]"
    if (head_cyc != "") {
        printf ",\n  \"headline\": {\n"
        printf "    \"name\": \"SimSpeed/P-B\",\n"
        printf "    \"speedup_cycles_per_sec\": %.2f,\n", head_cyc / base_cycles
        if (head_allocs + 0 == 0)
            printf "    \"alloc_reduction\": \"%gx -> 0 (allocation-free steady state)\"\n", base_allocs
        else
            printf "    \"alloc_reduction\": %.2f\n", base_allocs / head_allocs
        printf "  }"
    }
    printf "\n}\n"
}' > "$OUT"

echo "wrote $OUT" >&2

if [ -n "$PROFILE_DIR" ]; then
    mkdir -p "$PROFILE_DIR"
    echo "bench.sh: capturing CPU+heap profiles into $PROFILE_DIR" >&2
    for W in 1 8; do
        go test -run '^$' -bench "BenchmarkSimSpeedLarge/32x16-w${W}\$" \
            -benchtime "$BENCHTIME" -timeout 0 \
            -cpuprofile "$PROFILE_DIR/cpu-32x16-w${W}.pprof" \
            -memprofile "$PROFILE_DIR/mem-32x16-w${W}.pprof" \
            -o "$PROFILE_DIR/bench.test" . >/dev/null
    done
    echo "bench.sh: inspect with: go tool pprof $PROFILE_DIR/bench.test $PROFILE_DIR/cpu-32x16-w8.pprof" >&2
fi

python3 - "$OUT" "$BASELINE" <<'EOF'
import json, os, sys

out_path, base_path = sys.argv[1], sys.argv[2]
cur = json.load(open(out_path))
cur_b = {b["name"]: b for b in cur.get("benchmarks", [])}

# Every gate outcome lands both on stdout and in the JSON's "gates"
# array, skips included, so the recorded file explains itself off-box.
gates = []
failures = []

def record(name, status, detail):
    gates.append({"gate": name, "status": status, "detail": detail})
    print(f"  {status:4s} {name}: {detail}")
    if status == "FAIL":
        failures.append(name)

def skip(name, reason):
    gates.append({"gate": name, "status": "skipped", "reason": reason})
    print(f"  skip {name}: {reason}")

if base_path == "none":
    skip("baseline regression", "BASELINE=none")
elif not os.path.exists(base_path):
    skip("baseline regression", f"baseline {base_path} not found")
else:
    base_b = {b["name"]: b for b in json.load(open(base_path)).get("benchmarks", [])
              if b.get("cycles_per_sec") is not None}

    # The idle floor is sub-microsecond per cycle: scheduler jitter alone
    # moves it +/-20% run to run, so it is reported but not gated.
    UNGATED = {"SimSpeedIdle"}

    for name, old in sorted(base_b.items()):
        new = cur_b.get(name)
        if new is None or new.get("cycles_per_sec") is None:
            continue
        ratio = new["cycles_per_sec"] / old["cycles_per_sec"]
        detail = (f"{old['cycles_per_sec']:.0f} -> "
                  f"{new['cycles_per_sec']:.0f} cycles/s ({ratio:.2f}x)")
        if name in UNGATED:
            record(f"baseline {name}", "info", detail + " (ungated)")
        else:
            record(f"baseline {name}", "FAIL" if ratio < 0.80 else "ok", detail)

# Intra-run parallelism criteria: only meaningful with real cores to
# spread the boards over, so the speed checks are conditioned on CPU
# count — but skipping is always announced and recorded, never silent.
cpus = os.cpu_count() or 1
large = [c for c in ("32x16", "64x8")
         if any(n.startswith(f"SimSpeedLarge/{c}-w") for n in cur_b)]
if not large:
    skip("parallel speedup", "no SimSpeedLarge results (SKIP_LARGE=1?)")
elif cpus < 8:
    skip("parallel speedup",
         f"NumCPU<8 ({cpus} CPU(s); w8>=2x-w1 and w2>=w1 gates need real cores)")
else:
    w1 = cur_b.get("SimSpeedLarge/32x16-w1")
    w8 = cur_b.get("SimSpeedLarge/32x16-w8")
    if w1 and w8:
        speedup = w8["cycles_per_sec"] / w1["cycles_per_sec"]
        record("32x16 parallel speedup (w8/w1)",
               "FAIL" if speedup < 2.0 else "ok",
               f"{speedup:.2f}x (need >= 2x)")
    for c in large:
        c1 = cur_b.get(f"SimSpeedLarge/{c}-w1")
        c2 = cur_b.get(f"SimSpeedLarge/{c}-w2")
        if not (c1 and c2):
            continue
        ratio = c2["cycles_per_sec"] / c1["cycles_per_sec"]
        record(f"{c} w2 vs w1", "FAIL" if ratio < 1.0 else "ok",
               f"{ratio:.2f}x (w2 may not lose)")

# Allocation gate, unconditional: epoch dispatch and the compact
# outboxes must hold the parallel engine at (or below) the serial
# allocation floor, whatever the core count.
w1 = cur_b.get("SimSpeedLarge/32x16-w1")
if w1 and w1.get("allocs_per_op") is not None:
    for w in (2, 4, 8):
        c = cur_b.get(f"SimSpeedLarge/32x16-w{w}")
        if not c or c.get("allocs_per_op") is None:
            continue
        record(f"32x16 allocs/op w{w} vs w1",
               "FAIL" if c["allocs_per_op"] > w1["allocs_per_op"] else "ok",
               f"{c['allocs_per_op']:g} vs {w1['allocs_per_op']:g}")

# System.Reset reuse gate, same-run relative so box drift cannot touch
# it: repeated same-topology jobs through a Runner must beat fresh
# construction by at least 1.5x jobs/s.
fresh = cur_b.get("SweepJobs/fresh")
reuse = cur_b.get("SweepJobs/reuse")
if not (fresh and reuse and fresh.get("jobs_per_sec") and reuse.get("jobs_per_sec")):
    skip("SweepJobs reuse speedup", "SweepJobs rows missing (SKIP_LARGE=1?)")
else:
    ratio = reuse["jobs_per_sec"] / fresh["jobs_per_sec"]
    record("SweepJobs reuse speedup",
           "FAIL" if ratio < 1.5 else "ok",
           f"{fresh['jobs_per_sec']:.2f} -> {reuse['jobs_per_sec']:.2f} jobs/s "
           f"({ratio:.2f}x, need >= 1.5x)")

cur["gates"] = gates
with open(out_path, "w") as f:
    json.dump(cur, f, indent=2)
    f.write("\n")

if failures:
    print(f"bench.sh: {len(failures)} gate(s) failed: {', '.join(failures)}",
          file=sys.stderr)
    sys.exit(1)
print("bench.sh: regression gate passed")
EOF

// Package erapid is a cycle-accurate simulator of E-RAPID, the
// power-aware bandwidth-reconfigurable optical interconnect of
//
//	A. K. Kodi and A. Louri, "Power-Aware Bandwidth-Reconfigurable
//	Optical Interconnects for High-Performance Computing (HPC) Systems",
//	IPPS/IPDPS 2007.
//
// The library models the complete system: Spider-style electrical
// virtual-channel routers on each board, the WDM optical super-highway
// with per-destination passive couplers and laser arrays, the three
// bit-rate/voltage operating points of the optical links, and the
// distributed Lock-Step reconfiguration protocol that combines Dynamic
// Power Management (DPM) with Dynamic Bandwidth Re-allocation (DBR).
//
// # Quick start
//
//	cfg := erapid.DefaultConfig(erapid.PB) // power-aware, bandwidth-reconfigured
//	cfg.Pattern = erapid.Complement
//	cfg.Load = 0.7 // fraction of uniform-traffic network capacity
//	res, err := erapid.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Throughput, res.AvgLatency, res.PowerDynamicMW)
//
// Full figure sweeps (throughput / latency / power across loads, modes
// and traffic patterns, run in parallel) are available through
// SweepContext; see the examples directory and cmd/erapid-sweep.
//
// # Cancellation
//
// RunContext and SweepContext accept a context whose cancellation is
// checked once per reconfiguration window (R_w): a cancelled run
// returns within one window with the metrics of its completed prefix
// and a *CancelledError. Long-running servers (see cmd/erapid-serve)
// build on this for job cancellation and timeouts.
//
// # Config schema
//
// Config serializes to a versioned canonical JSON schema (see
// SchemaVersion, ParseConfig, Config.CanonicalJSON and Config.Digest);
// Validate reports structured per-field errors (ValidationError).
package erapid

import (
	"context"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

// Mode selects one of the four network configurations of the paper's
// design space (Fig. 3).
type Mode = core.Mode

// The four network configurations.
const (
	// NPNB: non-power-aware, non-bandwidth-reconfigured (static RAPID).
	NPNB = core.NPNB
	// PNB: power-aware only (DPM).
	PNB = core.PNB
	// NPB: bandwidth-reconfigured only (DBR).
	NPB = core.NPB
	// PB: the paper's Lock-Step technique (DPM + DBR).
	PB = core.PB
)

// Traffic pattern names accepted by Config.Pattern.
const (
	Uniform    = traffic.Uniform
	Complement = traffic.Complement
	Butterfly  = traffic.Butterfly
	Shuffle    = traffic.Shuffle
	Transpose  = traffic.Transpose
	BitReverse = traffic.BitReverse
	Tornado    = traffic.Tornado
	Neighbor   = traffic.Neighbor
	Hotspot    = traffic.Hotspot
	// Remote sends uniformly to the nodes of other groups (other racks);
	// it is the inter-rack fabric's traffic model in hierarchical runs.
	Remote = traffic.Remote
)

// Config describes one simulation run. Obtain a baseline with
// DefaultConfig and override fields, or decode a JSON document with
// ParseConfig. Config serializes to a versioned canonical schema:
// Validate reports structured per-field errors, CanonicalJSON returns
// the canonical encoding, and Digest content-addresses the simulation
// it describes.
type Config = core.Config

// SchemaVersion is the current version of the canonical Config JSON
// schema ("schema_version" in encoded documents). Decoders accept
// documents without the tag (the pre-versioning form) and reject
// versions they do not know.
const SchemaVersion = core.SchemaVersion

// FieldError locates one invalid Config field (structured validation).
type FieldError = core.FieldError

// ValidationError aggregates every invalid field of a Config; it is
// the error type of Config.Validate and ParseConfig.
type ValidationError = core.ValidationError

// CancelledError reports a run stopped early by its context, alongside
// the partial Result of the completed windows.
type CancelledError = core.CancelledError

// ParseConfig decodes a JSON config document as an overlay over the
// paper's P-B defaults and validates it.
func ParseConfig(data []byte) (Config, error) { return core.ParseConfig(data) }

// TierSpec describes one level of a hierarchical topology in
// Config.Tiers: entry 0 is the intra-rack SRS, entry 1 the inter-rack
// WDM fabric. A flat (single-SRS) Config leaves Tiers nil.
type TierSpec = core.TierSpec

// TierResult is one level of Result.Tiers, the per-tier breakdown of
// a hierarchical run (power, latency, protocol activity per tier).
type TierResult = core.TierResult

// Result carries the metrics of one run.
type Result = core.Result

// System is an assembled network for custom cycle-by-cycle drivers.
type System = core.System

// Runner executes runs back-to-back, transparently reusing one pooled
// System across structurally compatible configurations via
// System.Reset. The zero value is ready to use; it is not safe for
// concurrent use — give each worker goroutine its own.
type Runner = core.Runner

// Modes returns the four configurations in the paper's order.
func Modes() []Mode { return core.Modes() }

// ParseMode parses a mode label such as "P-B".
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// DefaultConfig returns the paper's 64-node operating point (8 boards ×
// 8 nodes, Table 1 parameters, R_w = 2000) for the given mode.
func DefaultConfig(mode Mode) Config { return core.DefaultConfig(mode) }

// Run simulates one configuration through warm-up, measurement and
// drain, returning the collected metrics. It is RunContext without
// cancellation.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RunContext is Run with cooperative cancellation: the context is
// checked once per reconfiguration window, so a cancelled run returns
// within one R_w window with a partial Result (the completed prefix,
// bit-identical to the uncancelled run's) and a *CancelledError.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return core.RunContext(ctx, cfg)
}

// NewSystem assembles a network without running it, for custom drivers
// (see examples/designspace). A System models one SRS tier; multi-tier
// configs assemble through NewHier instead.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Hier is an assembled hierarchical (multi-tier) simulation: R
// independent rack SRS instances plus the inter-rack WDM fabric. Run
// and RunContext dispatch to it automatically for multi-tier configs;
// construct one directly to attach telemetry before running.
type Hier = core.Hier

// HierTelemetry identifies one subsystem's telemetry in
// Hier.Telemetries: the tier, the instance index within the tier, and
// the series prefix ("tier0/rack3/", "tier1/").
type HierTelemetry = core.HierTelemetry

// NewHier assembles a hierarchical simulation from a multi-tier config
// (len(cfg.Tiers) >= 2).
func NewHier(cfg Config) (*Hier, error) { return core.NewHier(cfg) }

// PatternNames lists every supported traffic pattern.
func PatternNames() []string { return traffic.Names() }

// PaperPatterns lists the four patterns evaluated in the paper.
func PaperPatterns() []string { return traffic.PaperNames() }

// SweepRequest describes a batch of runs over patterns × modes × loads.
type SweepRequest = sweep.Request

// SweepSeries is one curve of a figure.
type SweepSeries = sweep.Series

// SweepPoint is one (load, result) pair.
type SweepPoint = sweep.Point

// Sweep runs the batch in parallel and returns one series per
// (pattern, mode) pair.
//
// Deprecated: use SweepContext, which supports cancellation and
// returns the sweep's errors directly instead of requiring a separate
// SweepErrs pass.
func Sweep(req SweepRequest) []SweepSeries { return sweep.Run(req) }

// SweepContext runs the batch in parallel and returns one series per
// (pattern, mode) pair plus the joined errors of every failed point
// (nil when all points succeeded). Cancelling the context stops
// dispatching new points and cancels in-flight runs at their next
// window boundary.
func SweepContext(ctx context.Context, req SweepRequest) ([]SweepSeries, error) {
	return sweep.RunContext(ctx, req)
}

// PaperLoads returns the paper's load axis: 0.1 … 0.9 of capacity.
func PaperLoads() []float64 { return sweep.PaperLoads() }

// SweepErrs collects errors across a sweep's points.
//
// Deprecated: SweepContext already returns these errors joined;
// SweepErrs remains for callers of the deprecated Sweep.
func SweepErrs(series []SweepSeries) []error { return sweep.Errs(series) }

// WindowSample is one reconfiguration window of system activity, for
// time-series studies (see System.EnableHistory).
type WindowSample = core.WindowSample

// History accumulates per-window samples of a running system.
type History = core.History

// TelemetryConfig parameterizes the unified telemetry layer (see
// System.EnableTelemetry): per-window metric series, the structured
// event stream and its exporters.
type TelemetryConfig = core.TelemetryConfig

// Telemetry is the per-run observability state: the metrics registry
// and the in-memory event recorder.
type Telemetry = core.Telemetry

// FaultSpec is a deterministic fault-injection scenario: scheduled
// laser kills/degrades, DPM actuator sticks, control-ring outages, and
// background fault rates. Assign one to Config.Faults.
type FaultSpec = fault.Spec

// FaultEvent is one scheduled fault in a FaultSpec.
type FaultEvent = fault.Event

// FaultCounters summarizes everything the injector did during a run
// (Result.Faults).
type FaultCounters = fault.Counters

// Scheduled fault kinds for FaultEvent.Kind.
const (
	FaultLaserKill    = fault.KindLaserKill
	FaultLaserDegrade = fault.KindLaserDegrade
	FaultLevelStick   = fault.KindLevelStick
	FaultCtrlOutage   = fault.KindCtrlOutage
)

// LoadFaultSpec reads and validates a JSON fault spec file.
func LoadFaultSpec(path string) (*FaultSpec, error) { return fault.LoadSpec(path) }

// ParseFaultSpec decodes and validates a JSON fault spec.
func ParseFaultSpec(data []byte) (*FaultSpec, error) { return fault.ParseSpec(data) }

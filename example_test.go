package erapid_test

import (
	"context"
	"fmt"
	"log"

	erapid "repro"
)

// Example runs the paper's Lock-Step network on the worst-case traffic
// pattern and reports whether bandwidth re-allocation engaged.
func Example() {
	cfg := erapid.DefaultConfig(erapid.PB)
	cfg.Boards, cfg.NodesPerBoard = 4, 4 // small system for a fast example
	cfg.Pattern = erapid.Complement
	cfg.Load = 0.8
	cfg.WarmupCycles = 4000
	cfg.MeasureCycles = 4000
	cfg.DrainLimitCycles = 60000
	res, err := erapid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconfigured:", res.Ctrl.Reassignments > 0)
	fmt.Println("delivered packets:", res.Delivered > 0)
	// Output:
	// reconfigured: true
	// delivered packets: true
}

// ExampleSweepContext produces one figure curve: P-B throughput across
// loads.
func ExampleSweepContext() {
	base := erapid.DefaultConfig(erapid.PB)
	base.Boards, base.NodesPerBoard = 4, 4
	base.WarmupCycles = 2000
	base.MeasureCycles = 2000
	base.DrainLimitCycles = 40000
	series, err := erapid.SweepContext(context.Background(), erapid.SweepRequest{
		Base:     base,
		Patterns: []string{erapid.Uniform},
		Modes:    []erapid.Mode{erapid.PB},
		Loads:    []float64{0.2, 0.4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("series:", len(series))
	fmt.Println("points:", len(series[0].Points))
	// Output:
	// series: 1
	// points: 2
}

// ExampleSystem_Step drives a system cycle by cycle with a per-window
// history recorder, the building block for custom experiments.
func ExampleSystem_Step() {
	cfg := erapid.DefaultConfig(erapid.PNB)
	cfg.Boards, cfg.NodesPerBoard = 4, 4
	cfg.Window = 500
	cfg.Load = 0.3
	sys, err := erapid.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hist := sys.EnableHistory(cfg.Window)
	sys.Controllers().Start()
	for i := 0; i < 2000; i++ {
		sys.Step()
	}
	fmt.Println("windows sampled:", len(hist.Samples()))
	// Output:
	// windows sampled: 4
}

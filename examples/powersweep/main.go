// Powersweep quantifies the paper's headline claim — the Lock-Step P-B
// network saves 25-50% power at under 5-8% throughput cost — across the
// load axis, using the parallel sweep harness.
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	erapid "repro"
)

func main() {
	// Ctrl-C cancels the in-flight runs at their next window boundary.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	base := erapid.DefaultConfig(erapid.NPNB)
	base.WarmupCycles = 12000
	base.MeasureCycles = 8000
	base.DrainLimitCycles = 80000

	series, err := erapid.SweepContext(ctx, erapid.SweepRequest{
		Base:     base,
		Patterns: []string{erapid.Uniform},
		Modes:    []erapid.Mode{erapid.NPNB, erapid.PNB, erapid.PB},
		Loads:    []float64{0.1, 0.3, 0.5, 0.7, 0.9},
	})
	if err != nil {
		log.Fatal(err)
	}

	byMode := map[erapid.Mode]erapid.SweepSeries{}
	for _, s := range series {
		byMode[s.Mode] = s
	}

	fmt.Println("Uniform traffic: power and throughput of the power-aware modes")
	fmt.Println("relative to the static NP-NB baseline, per load:")
	fmt.Printf("%5s  %22s  %22s\n", "", "P-NB", "P-B (Lock-Step)")
	fmt.Printf("%5s  %10s %10s  %10s %10s\n", "load", "Δpower", "Δthr", "Δpower", "Δthr")
	npnb := byMode[erapid.NPNB]
	for i, pt := range npnb.Points {
		b := pt.Result
		pnb := byMode[erapid.PNB].Points[i].Result
		pb := byMode[erapid.PB].Points[i].Result
		fmt.Printf("%5.1f  %9.1f%% %9.1f%%  %9.1f%% %9.1f%%\n",
			pt.Load,
			(pnb.PowerDynamicMW/b.PowerDynamicMW-1)*100,
			(pnb.Throughput/b.Throughput-1)*100,
			(pb.PowerDynamicMW/b.PowerDynamicMW-1)*100,
			(pb.Throughput/b.Throughput-1)*100)
	}

	// Aggregate, as the paper summarizes it.
	var sumPNB, sumPB, n float64
	for i, pt := range npnb.Points {
		b := pt.Result
		sumPNB += 1 - byMode[erapid.PNB].Points[i].Result.PowerDynamicMW/b.PowerDynamicMW
		sumPB += 1 - byMode[erapid.PB].Points[i].Result.PowerDynamicMW/b.PowerDynamicMW
		n++
	}
	fmt.Printf("\naverage power saving across loads: P-NB %.0f%%, P-B %.0f%%\n",
		sumPNB/n*100, sumPB/n*100)
	fmt.Println("(paper: P-NB ~16%, P-B 25-50%)")
}

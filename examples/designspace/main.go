// Designspace replays Fig. 3 of the paper: the four combinations of
// power-awareness and bandwidth-reconfigurability under a load that
// steps low → high → low, sampling per-window link utilization and
// supply power. NP modes hold power flat regardless of utilization;
// P modes track it, at the cost of bit-rate transition windows.
package main

import (
	"fmt"
	"log"
	"strings"

	erapid "repro"
)

const (
	window   = 1000
	nWindows = 18
	lightRt  = 0.002
	heavyRt  = 0.018
)

func main() {
	fmt.Println("Fig. 3 design space: 16-node system, phased load")
	fmt.Printf("windows 1-6 light (%.3f pkt/node/cyc), 7-12 heavy (%.3f), 13-18 light\n\n", lightRt, heavyRt)

	type trace struct {
		power []float64
		util  []float64
	}
	traces := map[erapid.Mode]*trace{}

	for _, mode := range erapid.Modes() {
		cfg := erapid.DefaultConfig(mode)
		cfg.Boards, cfg.NodesPerBoard = 4, 4
		cfg.Window = window
		cfg.InjectionRate = lightRt
		cfg.Load = 0

		sys, err := erapid.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.Controllers().Start()
		fab := sys.Fabric()
		fab.EnableMetering(true)
		tr := &trace{}
		prevDelivered := uint64(0)
		for w := 0; w < nWindows; w++ {
			switch w {
			case 6:
				sys.SetInjectionRate(heavyRt)
			case 12:
				sys.SetInjectionRate(lightRt)
			}
			fab.Meter().Reset()
			for c := 0; c < window; c++ {
				sys.Step()
			}
			tr.power = append(tr.power, fab.Meter().AvgSupplyMW())
			// Aggregate utilization proxy: deliveries per window, scaled.
			d := sys.DeliveredCount()
			tr.util = append(tr.util, float64(d-prevDelivered)/window)
			prevDelivered = d
		}
		traces[mode] = tr
	}

	fmt.Printf("%-8s", "window")
	for _, m := range erapid.Modes() {
		fmt.Printf("  %14s", m)
	}
	fmt.Println()
	fmt.Printf("%-8s", "")
	for range erapid.Modes() {
		fmt.Printf("  %7s %6s", "mW", "thr")
	}
	fmt.Println()
	for w := 0; w < nWindows; w++ {
		fmt.Printf("%-8d", w+1)
		for _, m := range erapid.Modes() {
			tr := traces[m]
			fmt.Printf("  %7.1f %6.3f", tr.power[w], tr.util[w]*1000)
		}
		fmt.Println()
	}
	fmt.Println("\n(thr in packets/window/1000; sketch of each mode's power trace:)")
	for _, m := range erapid.Modes() {
		fmt.Printf("  %-6s %s\n", m, spark(traces[m].power))
	}
}

// spark renders a crude sparkline of a series.
func spark(xs []float64) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(xs))
	}
	var b strings.Builder
	for _, x := range xs {
		i := int(x / max * float64(len(glyphs)-1))
		b.WriteRune(glyphs[i])
	}
	return b.String()
}

// Bursty demonstrates the Lock-Step protocol's sensitivity to traffic
// burstiness relative to its reconfiguration window R_w: bursts shorter
// than the window are invisible to the history-based policy (the window
// statistics average them away), while bursts of a few windows trigger
// DPM churn. The long-run mean load is identical in every run.
package main

import (
	"fmt"
	"log"

	erapid "repro"
)

func main() {
	fmt.Println("P-B, uniform traffic, mean load 0.5, R_w = 2000 cycles")
	fmt.Printf("%-14s %12s %10s %10s %12s %s\n",
		"injection", "throughput", "avg lat", "p99 lat", "power(mW)", "DPM transitions")

	type runCfg struct {
		name     string
		burstLen float64
		duty     float64
	}
	for _, rc := range []runCfg{
		{"bernoulli", 0, 0},
		{"burst 500cy", 500, 0.25},   // shorter than R_w
		{"burst 4000cy", 4000, 0.25}, // two windows long
		{"burst 16000cy", 16000, 0.25},
	} {
		cfg := erapid.DefaultConfig(erapid.PB)
		cfg.Pattern = erapid.Uniform
		cfg.Load = 0.5
		cfg.BurstLength = rc.burstLen
		cfg.BurstDuty = rc.duty
		cfg.WarmupCycles = 24000
		cfg.MeasureCycles = 16000
		cfg.DrainLimitCycles = 120000
		res, err := erapid.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.5f %10.0f %10.0f %12.1f %d ups, %d downs, %d wakes\n",
			rc.name, res.Throughput, res.AvgLatency, res.P99Latency,
			res.PowerDynamicMW, res.Ctrl.LevelUps, res.Ctrl.LevelDowns, res.Wakes)
	}
	fmt.Println("\nat the same mean rate, longer bursts overwhelm per-window history:")
	fmt.Println("tail latency grows by an order of magnitude and the DPM ladder churns")
	fmt.Println("harder, since each window's utilization whipsaws between idle and")
	fmt.Println("saturated — the R_w trade-off the paper discusses in Sec. 3.1.")
}

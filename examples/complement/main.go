// Complement traffic is E-RAPID's worst case: every node of board b
// talks only to board B-1-b, so each board-pair rides a single static
// wavelength and the network saturates at a fraction of its capacity.
// This example reproduces the paper's Sec. 4.2 story: dynamic bandwidth
// re-allocation recruits the idle wavelengths and multiplies throughput
// by ~4x, and the power-aware variant does it at lower power.
package main

import (
	"fmt"
	"log"

	erapid "repro"
)

func main() {
	fmt.Println("Complement traffic at 0.9 of network capacity (64 nodes):")
	fmt.Printf("%-6s %12s %10s %12s %14s %s\n",
		"mode", "throughput", "latency", "power(mW)", "reassignments", "held-channels(board0→7)")

	var baseThr, baseP float64
	for _, mode := range erapid.Modes() {
		cfg := erapid.DefaultConfig(mode)
		cfg.Pattern = erapid.Complement
		cfg.Load = 0.9
		cfg.DrainLimitCycles = 80000 // saturated points drain slowly

		sys, err := erapid.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Run()

		// How many wavelengths did board 0 end up holding toward board 7?
		held := len(sys.Fabric().HoldersToward(0, 7))

		if mode == erapid.NPNB {
			baseThr, baseP = res.Throughput, res.PowerDynamicMW
		}
		fmt.Printf("%-6s %12.5f %10.0f %12.1f %14d %d\n",
			mode, res.Throughput, res.AvgLatency, res.PowerDynamicMW,
			res.Ctrl.Reassignments, held)
	}

	fmt.Println()
	cfg := erapid.DefaultConfig(erapid.NPB)
	cfg.Pattern = erapid.Complement
	cfg.Load = 0.9
	cfg.DrainLimitCycles = 80000
	res, err := erapid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NP-B gains %.1fx throughput over NP-NB at %.1fx the dynamic power\n",
		res.Throughput/baseThr, res.PowerDynamicMW/baseP)
	fmt.Println("(the paper reports ~4x throughput at ~4x power — 'almost 400% improvement')")
}

// Quickstart: simulate the paper's 64-node E-RAPID system in its
// power-aware bandwidth-reconfigured (P-B) mode under uniform traffic
// and print the headline metrics.
package main

import (
	"fmt"
	"log"

	erapid "repro"
)

func main() {
	cfg := erapid.DefaultConfig(erapid.PB) // Lock-Step: DPM + DBR
	cfg.Pattern = erapid.Uniform
	cfg.Load = 0.5 // half of the uniform-traffic network capacity

	res, err := erapid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("E-RAPID quickstart (64 nodes, P-B mode, uniform traffic, load 0.5)")
	fmt.Printf("  accepted throughput: %.5f packets/node/cycle\n", res.Throughput)
	fmt.Printf("  average latency:     %.0f cycles (p95 %.0f)\n", res.AvgLatency, res.P95Latency)
	fmt.Printf("  optical link power:  %.1f mW dynamic, %.1f mW supply\n",
		res.PowerDynamicMW, res.PowerSupplyMW)
	fmt.Printf("  energy per bit:      %.2f pJ\n", res.EnergyPerBitPJ)
	fmt.Printf("  DPM activity:        %d downscales, %d shutdowns, %d wakes\n",
		res.Ctrl.LevelDowns, res.Ctrl.Shutdowns, res.Wakes)

	// Compare with the static baseline at the same load.
	base := erapid.DefaultConfig(erapid.NPNB)
	base.Pattern = erapid.Uniform
	base.Load = 0.5
	bres, err := erapid.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nversus the static NP-NB baseline:")
	fmt.Printf("  throughput cost: %.1f%%\n", (1-res.Throughput/bres.Throughput)*100)
	fmt.Printf("  power saving:    %.1f%% (dynamic), %.1f%% (supply)\n",
		(1-res.PowerDynamicMW/bres.PowerDynamicMW)*100,
		(1-res.PowerSupplyMW/bres.PowerSupplyMW)*100)
}

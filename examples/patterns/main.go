// Patterns surveys every supported traffic pattern on the 64-node
// system and shows where reconfiguration pays off: the gap between the
// static NP-NB network and the Lock-Step P-B network depends entirely
// on how unevenly a pattern loads the static wavelength assignment.
package main

import (
	"fmt"
	"log"

	erapid "repro"
)

func main() {
	fmt.Println("All traffic patterns at 0.7 of network capacity (64 nodes):")
	fmt.Printf("%-11s  %23s  %23s  %s\n", "", "NP-NB (static)", "P-B (Lock-Step)", "")
	fmt.Printf("%-11s  %11s %11s  %11s %11s  %s\n",
		"pattern", "thr", "pwr(mW)", "thr", "pwr(mW)", "thr-gain")

	for _, pat := range erapid.PatternNames() {
		row := map[erapid.Mode]*erapid.Result{}
		for _, mode := range []erapid.Mode{erapid.NPNB, erapid.PB} {
			cfg := erapid.DefaultConfig(mode)
			cfg.Pattern = pat
			cfg.Load = 0.7
			cfg.WarmupCycles = 12000
			cfg.MeasureCycles = 6000
			cfg.DrainLimitCycles = 60000
			res, err := erapid.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			row[mode] = res
		}
		b, p := row[erapid.NPNB], row[erapid.PB]
		fmt.Printf("%-11s  %11.5f %11.1f  %11.5f %11.1f  %9.2fx\n",
			pat, b.Throughput, b.PowerDynamicMW, p.Throughput, p.PowerDynamicMW,
			p.Throughput/b.Throughput)
	}
	fmt.Println("\nuniform spreads load evenly (nothing to re-allocate); complement,")
	fmt.Println("tornado and neighbor concentrate each board's traffic on few")
	fmt.Println("wavelengths, which is where DBR recruits idle channels.")
}
